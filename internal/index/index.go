// Package index is the text-indexing substrate behind the LuIndex and
// LuSearch benchmark reproductions: a tokenizer, an inverted index with
// a flat on-disk encoding, a conjunctive searcher, and a deterministic
// synthetic corpus generator (standing in for the Lucene corpus the
// DaCapo benchmarks ship, per DESIGN.md).
package index

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Tokenize lower-cases text and splits it at non-alphanumeric runes.
func Tokenize(text string) []string {
	var toks []string
	start := -1
	flush := func(end int) {
		if start >= 0 {
			toks = append(toks, strings.ToLower(text[start:end]))
			start = -1
		}
	}
	for i, r := range text {
		alnum := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9'
		if alnum {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(text))
	return toks
}

// Document is one corpus entry.
type Document struct {
	ID   int32
	Text string
}

// vocabulary is the word list; term frequency follows a crude Zipf-like
// distribution (low ranks drawn far more often). The head is real words;
// the long tail of synthetic words gives the corpus a realistic
// vocabulary size so most postings lists are short.
var vocabulary = buildVocabulary()

func buildVocabulary() []string {
	head := []string{
		"the", "of", "and", "to", "in", "system", "memory", "lock", "thread",
		"atomic", "section", "split", "commit", "abort", "queue", "reader",
		"writer", "conflict", "transaction", "runtime", "field", "array",
		"object", "class", "final", "undo", "log", "buffer", "wrapper",
		"device", "network", "file", "server", "client", "request", "index",
		"search", "table", "benchmark", "overhead", "scalability", "parallel",
		"deadlock", "signal", "barrier", "worker", "task", "java", "code",
		"garbage", "collector", "compiler", "optimization", "inline", "check",
	}
	syllables := []string{"ka", "ro", "mi", "ten", "sol", "ver", "dax", "lum", "pri", "zet"}
	for i := 0; len(head) < 500; i++ {
		w := syllables[i%10] + syllables[(i/10)%10] + syllables[(i/100)%10]
		head = append(head, w)
	}
	return head
}

type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return x
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// zipfPick draws a vocabulary index biased toward low ranks.
func (r *rng) zipfPick() int {
	// Take the minimum of two uniform draws: rank ~ quadratically biased.
	a, b := r.intn(len(vocabulary)), r.intn(len(vocabulary))
	if b < a {
		a = b
	}
	return a
}

// GenCorpus generates nDocs deterministic documents of wordsPerDoc words.
func GenCorpus(nDocs, wordsPerDoc int, seed uint64) []Document {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r := rng(seed)
	docs := make([]Document, nDocs)
	var b strings.Builder
	for i := range docs {
		b.Reset()
		for w := 0; w < wordsPerDoc; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(vocabulary[r.zipfPick()])
		}
		docs[i] = Document{ID: int32(i), Text: b.String()}
	}
	return docs
}

// Queries derives nQueries two-term conjunctive queries,
// deterministically. Terms follow the corpus distribution (people search
// for words that occur), so most queries have hits and a scoring +
// highlighting pass to run.
func Queries(nQueries int, seed uint64) [][]string {
	if seed == 0 {
		seed = 0xBF58476D1CE4E5B9
	}
	r := rng(seed)
	qs := make([][]string, nQueries)
	for i := range qs {
		qs[i] = []string{vocabulary[r.zipfPick()], vocabulary[r.zipfPick()]}
	}
	return qs
}

// Index is an inverted index: term → sorted unique document IDs.
type Index struct {
	Postings map[string][]int32
}

// Build indexes the corpus.
func Build(docs []Document) *Index {
	idx := &Index{Postings: make(map[string][]int32)}
	for _, d := range docs {
		seen := map[string]bool{}
		for _, t := range Tokenize(d.Text) {
			if !seen[t] {
				seen[t] = true
				idx.Postings[t] = append(idx.Postings[t], d.ID)
			}
		}
	}
	for _, p := range idx.Postings {
		sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
	}
	return idx
}

// Search returns the IDs of documents containing every term, ascending.
func (idx *Index) Search(terms []string) []int32 {
	if len(terms) == 0 {
		return nil
	}
	result := idx.Postings[strings.ToLower(terms[0])]
	for _, t := range terms[1:] {
		result = intersect(result, idx.Postings[strings.ToLower(t)])
		if len(result) == 0 {
			return nil
		}
	}
	return append([]int32(nil), result...)
}

func intersect(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Encode renders the index in its flat file format:
// one "term:id,id,id\n" line per term, terms sorted.
func Encode(idx *Index) []byte {
	terms := make([]string, 0, len(idx.Postings))
	for t := range idx.Postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	var b strings.Builder
	for _, t := range terms {
		b.WriteString(t)
		b.WriteByte(':')
		for i, id := range idx.Postings[t] {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(int(id)))
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// Decode parses the flat file format back into an index.
func Decode(data []byte) (*Index, error) {
	idx := &Index{Postings: make(map[string][]int32)}
	for ln, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		term, ids, ok := strings.Cut(line, ":")
		if !ok || term == "" {
			return nil, fmt.Errorf("index: malformed line %d: %q", ln+1, line)
		}
		if ids == "" {
			idx.Postings[term] = nil
			continue
		}
		for _, s := range strings.Split(ids, ",") {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("index: malformed ID on line %d: %q", ln+1, s)
			}
			idx.Postings[term] = append(idx.Postings[term], int32(v))
		}
	}
	return idx, nil
}

// Terms returns the sorted term list (for validation).
func (idx *Index) Terms() []string {
	terms := make([]string, 0, len(idx.Postings))
	for t := range idx.Postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}

// Checksum is an order-independent fingerprint of the index, used to
// validate that baseline and SBD variants computed the same result.
func (idx *Index) Checksum() uint64 {
	var sum uint64
	for t, ids := range idx.Postings {
		var h uint64 = 14695981039346656037
		for i := 0; i < len(t); i++ {
			h = (h ^ uint64(t[i])) * 1099511628211
		}
		for _, id := range ids {
			h = (h ^ uint64(uint32(id))) * 1099511628211
		}
		sum += h
	}
	return sum
}

// Vocabulary exposes the generator's word list (for workloads that need
// realistic query terms).
func Vocabulary() []string { return append([]string(nil), vocabulary...) }
