package index

import (
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! x2: go-go")
	want := []string{"hello", "world", "x2", "go", "go"}
	if len(got) != len(want) {
		t.Fatalf("tokens %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens %v, want %v", got, want)
		}
	}
}

func TestTokenizeEdges(t *testing.T) {
	if toks := Tokenize(""); len(toks) != 0 {
		t.Fatalf("empty text tokens %v", toks)
	}
	if toks := Tokenize("...!!!"); len(toks) != 0 {
		t.Fatalf("punct-only tokens %v", toks)
	}
	if toks := Tokenize("single"); len(toks) != 1 || toks[0] != "single" {
		t.Fatalf("trailing token %v", toks)
	}
}

func TestGenCorpusDeterministic(t *testing.T) {
	a := GenCorpus(10, 20, 7)
	b := GenCorpus(10, 20, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("corpus generation not deterministic")
		}
	}
	c := GenCorpus(10, 20, 8)
	same := true
	for i := range a {
		if a[i].Text != c[i].Text {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestBuildAndSearch(t *testing.T) {
	docs := []Document{
		{0, "the lock and the queue"},
		{1, "queue of the thread"},
		{2, "lock thread lock"},
	}
	idx := Build(docs)
	if got := idx.Search([]string{"lock"}); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("search lock: %v", got)
	}
	if got := idx.Search([]string{"lock", "thread"}); len(got) != 1 || got[0] != 2 {
		t.Fatalf("search lock∧thread: %v", got)
	}
	if got := idx.Search([]string{"queue", "the"}); len(got) != 2 {
		t.Fatalf("search queue∧the: %v", got)
	}
	if got := idx.Search([]string{"missing"}); got != nil {
		t.Fatalf("search missing: %v", got)
	}
	if got := idx.Search(nil); got != nil {
		t.Fatalf("empty query: %v", got)
	}
}

func TestPostingsSortedUnique(t *testing.T) {
	idx := Build(GenCorpus(50, 30, 3))
	for term, ids := range idx.Postings {
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				t.Fatalf("postings for %q not sorted-unique: %v", term, ids)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	idx := Build(GenCorpus(40, 25, 5))
	back, err := Decode(Encode(idx))
	if err != nil {
		t.Fatal(err)
	}
	if idx.Checksum() != back.Checksum() {
		t.Fatal("round trip changed the index")
	}
	if len(idx.Terms()) != len(back.Terms()) {
		t.Fatal("term count changed")
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, bad := range []string{"noterm\n", ":1,2\n", "t:1,x\n"} {
		if _, err := Decode([]byte(bad)); err == nil {
			t.Errorf("Decode(%q) succeeded", bad)
		}
	}
	idx, err := Decode(nil)
	if err != nil || len(idx.Postings) != 0 {
		t.Fatalf("empty decode: %v", err)
	}
}

func TestSearchSubsetProperty(t *testing.T) {
	idx := Build(GenCorpus(120, 40, 11))
	voc := Vocabulary()
	f := func(a, b uint8) bool {
		t1 := voc[int(a)%len(voc)]
		t2 := voc[int(b)%len(voc)]
		both := idx.Search([]string{t1, t2})
		only1 := idx.Search([]string{t1})
		// Conjunction is a subset of each term's postings.
		set := map[int32]bool{}
		for _, id := range only1 {
			set[id] = true
		}
		for _, id := range both {
			if !set[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumOrderIndependent(t *testing.T) {
	docs := GenCorpus(30, 20, 9)
	idx1 := Build(docs)
	// Rebuild from reversed docs: postings contents identical.
	rev := make([]Document, len(docs))
	for i := range docs {
		rev[len(docs)-1-i] = docs[i]
	}
	idx2 := Build(rev)
	if idx1.Checksum() != idx2.Checksum() {
		t.Fatal("checksum depends on build order")
	}
}

func TestQueriesDeterministic(t *testing.T) {
	a := Queries(10, 3)
	b := Queries(10, 3)
	for i := range a {
		if a[i][0] != b[i][0] || a[i][1] != b[i][1] {
			t.Fatal("queries not deterministic")
		}
	}
}
