// Transfer: deadlock resolution and transactional output.
//
// Two threads transfer money between the same two accounts in opposite
// lock orders — the classic deadlock. Under SBD nothing special is
// needed: the STM's dreadlocks detector aborts the youngest section of
// the cycle, rolls it back (including its buffered console output, which
// therefore never appears twice), and replays it. The program always
// terminates with a conserved total.
//
// Run: go run ./examples/transfer
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/txio"
)

// -debug enables the runtime's §6 debug mode: every blocked thread,
// lock grant, and deadlock resolution is logged, which is how an SBD
// programmer locates the contention worth splitting around.
var debug = flag.Bool("debug", false, "log blocked threads and deadlock resolutions")

var accountClass = stm.NewClass("Account",
	stm.FieldSpec{Name: "owner", Kind: stm.KindStr, Final: true},
	stm.FieldSpec{Name: "balance", Kind: stm.KindWord},
)

var (
	ownerF   = accountClass.Field("owner")
	balanceF = accountClass.Field("balance")
)

func main() {
	flag.Parse()
	opts := stm.Options{}
	if *debug {
		opts.DebugLog = os.Stderr
	}
	rt := core.NewOpts(opts)
	console := txio.NewWriter(os.Stdout)

	newAccount := func(owner string, balance int64) *stm.Object {
		tx := rt.STM().Begin()
		defer tx.Commit()
		a := tx.New(accountClass)
		tx.WriteStr(a, ownerF, owner)
		tx.WriteInt(a, balanceF, balance)
		return a
	}
	alice := newAccount("alice", 1000)
	bob := newAccount("bob", 1000)

	const rounds = 50
	mover := func(from, to *stm.Object, amount int64) func(*core.Thread) {
		return func(th *core.Thread) {
			for i := 0; i < rounds; i++ {
				th.AtomicSplit(func(tx *stm.Tx) {
					// Opposite acquisition orders in the two threads: the
					// deadlock is resolved by the runtime, not the
					// programmer.
					fb := tx.ReadInt(from, balanceF)
					tb := tx.ReadInt(to, balanceF)
					tx.WriteInt(from, balanceF, fb-amount)
					tx.WriteInt(to, balanceF, tb+amount)
					console.Printf(tx, "%s -> %s: %d\n",
						tx.ReadStr(from, ownerF), tx.ReadStr(to, ownerF), amount)
				})
			}
		}
	}

	rt.Main(func(th *core.Thread) {
		t1 := th.Go("a->b", mover(alice, bob, 3))
		t2 := th.Go("b->a", mover(bob, alice, 2))
		th.Join(t1)
		th.Join(t2)

		th.Atomic(func(tx *stm.Tx) {
			a := tx.ReadInt(alice, balanceF)
			b := tx.ReadInt(bob, balanceF)
			console.Printf(tx, "final: alice=%d bob=%d total=%d\n", a, b, a+b)
		})
	})

	s := rt.Stats().Snapshot()
	fmt.Printf("sections committed=%d, deadlocks resolved=%d, aborts replayed=%d\n",
		s.Commits, s.Deadlocks, s.Aborts)
}
