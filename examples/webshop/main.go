// Webshop: the request-processing example of paper Figures 2 and 3.
//
// The schema and order-processing routines live in internal/shop (the
// same package cmd/sbd-serve runs as a long-lived server); this example
// is the didactic two-request version. It runs the workload twice:
//
//   - Coarse sections (Figure 3a): one atomic section per request, so two
//     requests touching the same article serialize for the whole request.
//   - Fine sections (Figure 3b): processRequest has the canSplit property
//     and splits after each position, so concurrent requests interleave
//     at article granularity.
//
// Both runs end with the same inventory — splitting changes concurrency,
// never the result (as long as the split points are race-free, which the
// per-position accounting here is).
//
// Run: go run ./examples/webshop
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/shop"
	"repro/internal/stm"
)

func run(fine bool) (sold int64, sections uint64) {
	rt := core.New()
	var articles []*stm.Object
	func() {
		tx := rt.STM().Begin()
		defer tx.Commit()
		for i := 0; i < 4; i++ {
			articles = append(articles, shop.NewProduct(tx, fmt.Sprintf("article-%d", i), 100))
		}
	}()

	orders := [][]shop.Position{
		{{Article: 0, Quantity: 2}, {Article: 1, Quantity: 1}, {Article: 2, Quantity: 3}},
		{{Article: 2, Quantity: 1}, {Article: 0, Quantity: 4}, {Article: 3, Quantity: 2}},
	}

	rt.Main(func(th *core.Thread) {
		var kids []*core.Thread
		for i, order := range orders {
			o := order
			kids = append(kids, th.Go(fmt.Sprintf("request-%d", i), func(c *core.Thread) {
				shop.ProcessRequest(c, articles, o, fine)
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
		th.Atomic(func(tx *stm.Tx) {
			for _, a := range articles {
				sold += tx.ReadInt(a, shop.ProductSold)
			}
		})
	})
	return sold, rt.Stats().Snapshot().Commits
}

func main() {
	coarseSold, coarseSections := run(false)
	fineSold, fineSections := run(true)
	fmt.Printf("coarse (Fig 3a): sold=%d in %d atomic sections\n", coarseSold, coarseSections)
	fmt.Printf("fine   (Fig 3b): sold=%d in %d atomic sections\n", fineSold, fineSections)
	if coarseSold != fineSold {
		panic("splitting changed the result")
	}
	fmt.Println("identical inventory; finer splitting only increased concurrency")
}
