// Webshop: the request-processing example of paper Figures 2 and 3.
//
// Two request threads process orders against a shared article inventory.
// The example runs the workload twice:
//
//   - Coarse sections (Figure 3a): one atomic section per request, so two
//     requests touching the same article serialize for the whole request.
//   - Fine sections (Figure 3b): processRequest has the canSplit property
//     and splits after each position, so concurrent requests interleave
//     at article granularity.
//
// Both runs end with the same inventory — splitting changes concurrency,
// never the result (as long as the split points are race-free, which the
// per-position accounting here is).
//
// Run: go run ./examples/webshop
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stm"
)

var articleClass = stm.NewClass("Article",
	stm.FieldSpec{Name: "name", Kind: stm.KindStr, Final: true},
	stm.FieldSpec{Name: "available", Kind: stm.KindWord},
	stm.FieldSpec{Name: "sold", Kind: stm.KindWord},
)

var (
	nameF      = articleClass.Field("name")
	availableF = articleClass.Field("available")
	soldF      = articleClass.Field("sold")
)

// position is one (article, quantity) line of an order.
type position struct {
	article  int
	quantity int64
}

// processPosition is Figure 2's method: it cannot split (it does not
// take the *core.Thread), so callers know their locked set survives it.
func processPosition(tx *stm.Tx, a *stm.Object, quantity int64) bool {
	if tx.ReadInt(a, availableF) < quantity {
		return false
	}
	tx.WriteInt(a, availableF, tx.ReadInt(a, availableF)-quantity)
	tx.WriteInt(a, soldF, tx.ReadInt(a, soldF)+quantity)
	return true
}

// processRequest handles one order. With fine=false it runs entirely in
// the caller's section (Figure 3a); with fine=true it has the canSplit
// property and splits after each position (Figure 3b) — which is why it
// takes the thread.
func processRequest(th *core.Thread, articles []*stm.Object, order []position, fine bool) {
	for _, pos := range order {
		p := pos
		th.Atomic(func(tx *stm.Tx) {
			processPosition(tx, articles[p.article], p.quantity)
		})
		if fine {
			th.Split()
		}
	}
}

func run(fine bool) (sold int64, sections uint64) {
	rt := core.New()
	var articles []*stm.Object
	func() {
		tx := rt.STM().Begin()
		defer tx.Commit()
		for i := 0; i < 4; i++ {
			a := tx.New(articleClass)
			tx.WriteStr(a, nameF, fmt.Sprintf("article-%d", i))
			tx.WriteInt(a, availableF, 100)
			articles = append(articles, a)
		}
	}()

	orders := [][]position{
		{{0, 2}, {1, 1}, {2, 3}},
		{{2, 1}, {0, 4}, {3, 2}},
	}

	rt.Main(func(th *core.Thread) {
		var kids []*core.Thread
		for i, order := range orders {
			o := order
			kids = append(kids, th.Go(fmt.Sprintf("request-%d", i), func(c *core.Thread) {
				processRequest(c, articles, o, fine)
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
		th.Atomic(func(tx *stm.Tx) {
			for _, a := range articles {
				sold += tx.ReadInt(a, soldF)
			}
		})
	})
	return sold, rt.Stats().Snapshot().Commits
}

func main() {
	coarseSold, coarseSections := run(false)
	fineSold, fineSections := run(true)
	fmt.Printf("coarse (Fig 3a): sold=%d in %d atomic sections\n", coarseSold, coarseSections)
	fmt.Printf("fine   (Fig 3b): sold=%d in %d atomic sections\n", fineSold, fineSections)
	if coarseSold != fineSold {
		panic("splitting changed the result")
	}
	fmt.Println("identical inventory; finer splitting only increased concurrency")
}
