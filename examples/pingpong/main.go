// Pingpong: transactional network I/O (paper §3.4 and §3.7).
//
// A server thread answers requests over an in-memory connection; a
// client thread sends a request and reads the response. Because writes
// are buffered until the section ends, a request/response round trip
// REQUIRES a split between sending and receiving — the reason the
// paper's noSplit composition needs the splitOptional escape hatch. The
// client demonstrates both: the working round trip, and the panic that
// guards against wrapping the round trip in a NoSplit block.
//
// Run: go run ./examples/pingpong
package main

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/minihttp"
	"repro/internal/stm"
	"repro/internal/txio"
)

func main() {
	rt := core.New()
	listener := minihttp.Listen(1)

	rt.Main(func(th *core.Thread) {
		server := th.Go("server", func(s *core.Thread) {
			var conn *minihttp.Conn
			var err error
			s.Suspend(func() { conn, err = listener.Accept() })
			if err != nil {
				return
			}
			defer conn.Close()
			tc := txio.NewConn(conn)
			for {
				readable := false
				s.Suspend(func() { readable = tc.HasReplay() || conn.WaitReadable() })
				if !readable {
					return
				}
				s.Atomic(func(tx *stm.Tx) {
					line, err := tc.ReadLine(tx)
					if err != nil {
						return
					}
					tc.WriteString(tx, strings.ToUpper(line)+"\n") //nolint:errcheck
				})
				s.Split() // the response leaves the buffer here
			}
		})

		client := th.Go("client", func(c *core.Thread) {
			var conn *minihttp.Conn
			var err error
			c.Suspend(func() { conn, err = listener.Dial() })
			if err != nil {
				panic(err)
			}
			tc := txio.NewConn(conn)
			for _, msg := range []string{"ping", "atomic sections", "split to flush"} {
				m := msg
				c.Atomic(func(tx *stm.Tx) { tc.WriteString(tx, m+"\n") }) //nolint:errcheck
				// Without this split the server would never see the
				// request: the write sits in B_W until the section ends.
				c.SplitRequired()
				c.Split()
				c.Suspend(func() {
					if !tc.HasReplay() {
						conn.WaitReadable()
					}
				})
				c.Atomic(func(tx *stm.Tx) {
					reply, err := tc.ReadLine(tx)
					if err != nil {
						panic(err)
					}
					fmt.Printf("client: %q -> %q\n", m, reply)
				})
				c.Split()
			}
			conn.Close()

			// The guard: inside NoSplit, a round trip is impossible and
			// SplitRequired says so loudly instead of hanging.
			func() {
				defer func() {
					if r := recover(); r != nil {
						fmt.Println("client: NoSplit round trip correctly rejected:", r)
					}
				}()
				c.NoSplit(func() {
					c.SplitRequired()
				})
			}()
		})

		th.Join(client)
		listener.Close()
		th.Join(server)
	})
}
