// Quickstart: the worker example of paper Figure 1.
//
// Two worker threads process requests and bump a shared `processed`
// counter. Everything is synchronized by default — without the split,
// the counter's lock would serialize the workers for their whole
// lifetime; the split per iteration releases it and lets them
// interleave, while the result stays correct either way.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/txio"
)

var statsClass = stm.NewClass("Stats",
	stm.FieldSpec{Name: "processed", Kind: stm.KindWord},
)

var processedF = statsClass.Field("processed")

func main() {
	rt := core.New()
	stats := stm.NewCommitted(statsClass)
	console := txio.NewWriter(os.Stdout)

	const requests = 5

	worker := func(name string) func(*core.Thread) {
		return func(th *core.Thread) {
			for i := 0; i < requests; i++ {
				req := i
				// One atomic section per request (AtomicSplit = the body
				// plus the `split` of Figure 1 line 7). The console write
				// is transactional: it becomes visible exactly when the
				// section commits.
				th.AtomicSplit(func(tx *stm.Tx) {
					n := tx.ReadInt(stats, processedF) + 1
					tx.WriteInt(stats, processedF, n)
					console.Printf(tx, "%s handled request %d (total %d)\n", name, req, n)
				})
			}
		}
	}

	rt.Main(func(th *core.Thread) {
		a := th.Go("worker-a", worker("worker-a"))
		b := th.Go("worker-b", worker("worker-b"))
		th.Join(a)
		th.Join(b)
		total := core.Fetch(th, func(tx *stm.Tx) int64 {
			return tx.ReadInt(stats, processedF)
		})
		fmt.Printf("processed = %d (want %d)\n", total, 2*requests)
	})
}
