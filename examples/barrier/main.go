// Barrier: the notifyAll/wait example of paper Figure 6.
//
// N threads synchronize at a reusable barrier built from SBD condition
// variables: each arrival increments a shared counter inside an atomic
// section; the last arrival signals (the signal is deferred to the
// section's end, when the counter's lock is already free) and waiters
// re-check the condition in a fresh section after waking.
//
// Run: go run ./examples/barrier
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stm"
)

// Barrier mirrors the paper's class: `expected` is final (a plain Go
// field needs no synchronization, exactly like a final field), `arrived`
// is the shared condition.
type Barrier struct {
	expected int64
	arrived  *stm.Object
	cond     *core.Cond
}

var barrierClass = stm.NewClass("Barrier",
	stm.FieldSpec{Name: "arrived", Kind: stm.KindWord},
)

var arrivedF = barrierClass.Field("arrived")

// NewBarrier builds a barrier for n parties.
func NewBarrier(n int) *Barrier {
	return &Barrier{
		expected: int64(n),
		arrived:  stm.NewCommitted(barrierClass),
		cond:     core.NewCond(),
	}
}

// Sync is the canSplit sync() method of Figure 6: it may split (via
// Wait or the trailing Split), so it takes the thread — the Go spelling
// of the canSplit property.
func (b *Barrier) Sync(th *core.Thread) {
	var mustWait bool
	th.Atomic(func(tx *stm.Tx) {
		n := tx.ReadInt(b.arrived, arrivedF) + 1
		tx.WriteInt(b.arrived, arrivedF, n)
		mustWait = n < b.expected
		if !mustWait {
			th.NotifyAll(b.cond) // deferred to the section's end
		}
	})
	if mustWait {
		for core.Fetch(th, func(tx *stm.Tx) bool {
			return tx.ReadInt(b.arrived, arrivedF) < b.expected
		}) {
			th.Wait(b.cond) // splits, blocks, begins a new section
		}
	} else {
		th.Split() // deliver the deferred notifyAll
	}
}

func main() {
	const parties = 4
	rt := core.New()
	barrier := NewBarrier(parties)

	rt.Main(func(th *core.Thread) {
		var kids []*core.Thread
		for i := 0; i < parties; i++ {
			id := i
			kids = append(kids, th.Go(fmt.Sprintf("party-%d", id), func(c *core.Thread) {
				fmt.Printf("party %d: before barrier\n", id)
				barrier.Sync(c)
				fmt.Printf("party %d: after barrier\n", id)
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
	})
	fmt.Println("all parties passed the barrier")
}
