// Package repro is a from-scratch Go reproduction of Bättig & Gross,
// "Synchronized-by-Default Concurrency for Shared-Memory Systems"
// (PPoPP 2017). See README.md for the architecture, DESIGN.md for the
// system inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record.
//
// The root package exists to host the benchmark harness (bench_test.go):
// one benchmark per table and figure of the paper's evaluation.
package repro
